lib/cache/store.mli: Geometry Skipit_sim
