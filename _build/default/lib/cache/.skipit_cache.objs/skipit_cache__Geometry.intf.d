lib/cache/geometry.mli:
