lib/cache/geometry.ml:
