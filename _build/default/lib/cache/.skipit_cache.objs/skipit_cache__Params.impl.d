lib/cache/params.ml: Geometry Printf
