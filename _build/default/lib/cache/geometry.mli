(** Cache geometry: sizes, associativity and address slicing.

    The SonicBOOM configuration in the paper uses a 32 KiB 8-way L1 with 64 B
    lines and a 512 KiB inclusive L2 (§3.3, §7.1); both are instances of this
    geometry. *)

type t = private {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  sets : int;  (** [size_bytes / (ways * line_bytes)], a power of two. *)
}

val v : size_bytes:int -> ways:int -> line_bytes:int -> t
(** Validates that the parameters are positive powers of two and divide
    evenly. *)

val boom_l1 : t
(** 32 KiB, 8-way, 64 B lines (§3.3). *)

val boom_l2 : t
(** 512 KiB, 8-way, 64 B lines (§7.1). *)

val line_base : t -> int -> int
(** Align an address down to its line. *)

val index_of : t -> int -> int
(** Set index of an address. *)

val tag_of : t -> int -> int

val addr_of : t -> tag:int -> index:int -> int
(** Reconstruct the line base address from tag and set index (inverse of
    {!tag_of}/{!index_of} up to line alignment). *)

val words_per_line : t -> int
val offset_word : t -> int -> int
(** Word offset of an address within its line. *)

val lines : t -> int
(** Total number of lines the cache can hold. *)
