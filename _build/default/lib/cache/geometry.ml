type t = { size_bytes : int; ways : int; line_bytes : int; sets : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let v ~size_bytes ~ways ~line_bytes =
  if not (is_power_of_two line_bytes) then invalid_arg "Geometry: line_bytes not a power of two";
  if ways <= 0 then invalid_arg "Geometry: ways <= 0";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Geometry: size not divisible by ways*line";
  let sets = size_bytes / (ways * line_bytes) in
  if not (is_power_of_two sets) then invalid_arg "Geometry: sets not a power of two";
  { size_bytes; ways; line_bytes; sets }

let boom_l1 = v ~size_bytes:(32 * 1024) ~ways:8 ~line_bytes:64
let boom_l2 = v ~size_bytes:(512 * 1024) ~ways:8 ~line_bytes:64

let line_base t addr = addr land lnot (t.line_bytes - 1)
let index_of t addr = addr / t.line_bytes land (t.sets - 1)
let tag_of t addr = addr / t.line_bytes / t.sets
let addr_of t ~tag ~index = ((tag * t.sets) + index) * t.line_bytes
let words_per_line t = t.line_bytes / 8
let offset_word t addr = addr land (t.line_bytes - 1) / 8
let lines t = t.sets * t.ways
