module Instr = Skipit_cpu.Instr
module T = Skipit_core.Thread

type t = (int * Instr.t list) list

let parse_int token =
  match int_of_string_opt token with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "not a number: %S" token)

let ( let* ) r f = Result.bind r f

let parse_instr tokens =
  match tokens with
  | [ "ld"; a ] ->
    let* addr = parse_int a in
    Ok (Instr.Load { addr })
  | [ "sd"; a; v ] ->
    let* addr = parse_int a in
    let* value = parse_int v in
    Ok (Instr.Store { addr; value })
  | [ "cas"; a; e; d ] ->
    let* addr = parse_int a in
    let* expected = parse_int e in
    let* desired = parse_int d in
    Ok (Instr.Cas { addr; expected; desired })
  | [ "cbo.clean"; a ] ->
    let* addr = parse_int a in
    Ok (Instr.Cbo_clean { addr })
  | [ "cbo.flush"; a ] ->
    let* addr = parse_int a in
    Ok (Instr.Cbo_flush { addr })
  | [ "cbo.inval"; a ] ->
    let* addr = parse_int a in
    Ok (Instr.Cbo_inval { addr })
  | [ "cbo.zero"; a ] ->
    let* addr = parse_int a in
    Ok (Instr.Cbo_zero { addr })
  | [ "fence" ] -> Ok Instr.Fence
  | [ "delay"; n ] ->
    let* n = parse_int n in
    Ok (Instr.Delay n)
  | [] -> Error "empty instruction"
  | op :: _ -> Error (Printf.sprintf "unknown instruction %S" op)

type frame = Core of int * Instr.t list | Repeat of int * Instr.t list

let parse source =
  let lines = String.split_on_char '\n' source in
  (* The stack holds the current core section and any open repeat blocks,
     innermost first; instructions accumulate in reverse. *)
  let finish_core streams core body = (core, List.rev body) :: streams in
  let rec step lineno lines streams stack =
    match lines with
    | [] -> (
      match stack with
      | [] -> Ok (List.rev streams)
      | Core (core, body) :: [] -> Ok (List.rev (finish_core streams core body))
      | Repeat _ :: _ -> Error "unterminated repeat block"
      | Core _ :: _ -> Error "internal: nested core sections")
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      match tokens, stack with
      | [], _ -> step (lineno + 1) rest streams stack
      | [ "core"; n ], [] -> (
        match parse_int n with
        | Ok core -> step (lineno + 1) rest streams [ Core (core, []) ]
        | Error e -> fail e)
      | [ "core"; n ], [ Core (core, body) ] -> (
        match parse_int n with
        | Ok core' ->
          step (lineno + 1) rest (finish_core streams core body) [ Core (core', []) ]
        | Error e -> fail e)
      | [ "core"; _ ], _ -> fail "core section inside a repeat block"
      | _, [] -> fail "instruction outside any core section"
      | [ "repeat"; n ], _ -> (
        match parse_int n with
        | Ok n when n >= 0 -> step (lineno + 1) rest streams (Repeat (n, []) :: stack)
        | Ok _ -> fail "negative repeat count"
        | Error e -> fail e)
      | [ "end" ], Repeat (n, body) :: parent :: deeper ->
        let unrolled = List.concat (List.init n (fun _ -> List.rev body)) in
        let parent =
          match parent with
          | Core (core, pbody) -> Core (core, List.rev_append unrolled pbody)
          | Repeat (m, pbody) -> Repeat (m, List.rev_append unrolled pbody)
        in
        step (lineno + 1) rest streams (parent :: deeper)
      | [ "end" ], _ -> fail "end without repeat"
      | tokens, frame :: deeper -> (
        match parse_instr tokens with
        | Ok instr ->
          let frame =
            match frame with
            | Core (core, body) -> Core (core, instr :: body)
            | Repeat (n, body) -> Repeat (n, instr :: body)
          in
          step (lineno + 1) rest streams (frame :: deeper)
        | Error e -> fail e))
  in
  let* streams = step 1 lines [] [] in
  let cores = List.map fst streams in
  if List.length (List.sort_uniq compare cores) <> List.length cores then
    Error "duplicate core section"
  else Ok (List.sort (fun (a, _) (b, _) -> compare a b) streams)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse source
  | exception Sys_error e -> Error e

let max_core t = List.fold_left (fun acc (core, _) -> max acc core) 0 t

let run sys t =
  let checksums = Array.make (Skipit_core.System.n_cores sys) 0 in
  let tasks =
    List.map
      (fun (core, instrs) ->
        {
          T.core;
          body =
            (fun () ->
              List.iter
                (fun instr ->
                  match instr with
                  | Instr.Load { addr } ->
                    checksums.(core) <- checksums.(core) lxor T.load addr
                  | Instr.Store { addr; value } -> T.store addr value
                  | Instr.Cas { addr; expected; desired } ->
                    ignore (T.cas addr ~expected ~desired)
                  | Instr.Cbo_clean { addr } -> T.clean addr
                  | Instr.Cbo_flush { addr } -> T.flush addr
                  | Instr.Cbo_inval { addr } -> T.inval addr
                  | Instr.Cbo_zero { addr } -> T.zero addr
                  | Instr.Fence -> T.fence ()
                  | Instr.Delay n -> T.delay n)
                instrs);
        })
      t
  in
  let cycles = T.run sys tasks in
  cycles, checksums

(* Render in the exact surface syntax [parse] accepts ([Instr.pp] uses an
   arrow for stores, which is for humans, not for round-tripping). *)
let pp_instr ppf = function
  | Instr.Load { addr } -> Format.fprintf ppf "ld %#x" addr
  | Instr.Store { addr; value } -> Format.fprintf ppf "sd %#x %d" addr value
  | Instr.Cas { addr; expected; desired } ->
    Format.fprintf ppf "cas %#x %d %d" addr expected desired
  | Instr.Cbo_clean { addr } -> Format.fprintf ppf "cbo.clean %#x" addr
  | Instr.Cbo_flush { addr } -> Format.fprintf ppf "cbo.flush %#x" addr
  | Instr.Cbo_inval { addr } -> Format.fprintf ppf "cbo.inval %#x" addr
  | Instr.Cbo_zero { addr } -> Format.fprintf ppf "cbo.zero %#x" addr
  | Instr.Fence -> Format.fprintf ppf "fence"
  | Instr.Delay n -> Format.fprintf ppf "delay %d" n

let pp ppf t =
  List.iter
    (fun (core, instrs) ->
      Format.fprintf ppf "core %d@," core;
      List.iter (fun i -> Format.fprintf ppf "  %a@," pp_instr i) instrs)
    t
