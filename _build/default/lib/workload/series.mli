(** Result containers shared by every figure driver: a labelled series of
    (x, y) points plus text rendering for the harness output. *)

type point = { x : float; y : float }

type t = { label : string; points : point list }

val v : string -> (float * float) list -> t

val map_y : (float -> float) -> t -> t

val pp_table : ?x_name:string -> ?y_name:string -> Format.formatter -> t list -> unit
(** Render several series as an aligned text table, one row per x value,
    one column per series (the form the paper's figures tabulate). *)

val pp_csv : Format.formatter -> t list -> unit

val bytes_label : int -> string
(** "64B", "4KiB", ... for writeback-size axes. *)
