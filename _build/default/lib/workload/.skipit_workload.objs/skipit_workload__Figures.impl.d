lib/workload/figures.ml: Ds_bench Float Format List Message Micro Series Skipit_cache Skipit_pds Skipit_persist Skipit_tilelink Skipit_xarch
