lib/workload/ds_bench.ml: Array List Option Printf Series Skipit_cache Skipit_core Skipit_mem Skipit_pds Skipit_persist Skipit_sim
