lib/workload/figures.mli: Format
