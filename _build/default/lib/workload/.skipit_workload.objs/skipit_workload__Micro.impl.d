lib/workload/micro.ml: Array List Message Printf Series Skipit_cache Skipit_core Skipit_mem Skipit_sim Skipit_tilelink
