lib/workload/trace_program.ml: Array Format In_channel List Printf Result Skipit_core Skipit_cpu String
