lib/workload/ablation.ml: Ds_bench Format List Message Micro Printf Series Skipit_cache Skipit_core Skipit_mem Skipit_pds Skipit_persist Skipit_tilelink
