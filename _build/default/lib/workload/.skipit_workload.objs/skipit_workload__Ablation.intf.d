lib/workload/ablation.mli: Format Series
