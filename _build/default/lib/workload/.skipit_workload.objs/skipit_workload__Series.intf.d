lib/workload/series.mli: Format
