lib/workload/ds_bench.mli: Series Skipit_cache Skipit_core Skipit_pds Skipit_persist
