lib/workload/series.ml: Float Format List Option Printf String
