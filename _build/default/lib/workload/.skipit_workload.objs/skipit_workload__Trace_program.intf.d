lib/workload/trace_program.mli: Format Skipit_core Skipit_cpu
