lib/workload/micro.mli: Message Series Skipit_cache Skipit_tilelink
