module Params = Skipit_cache.Params
module S = Skipit_core.System
module T = Skipit_core.Thread
open Skipit_tilelink

let line_bytes = 64

(* Store+flush [lines] lines, one fence; fresh single-core system. *)
let flush_region_cycles params ~lines =
  let sys = S.create (Params.with_cores params 1) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:line_bytes (lines * line_bytes) in
  let elapsed = ref 0 in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               for i = 0 to lines - 1 do
                 T.store (base + (i * line_bytes)) i
               done;
               T.fence ();
               let t0 = T.now () in
               for i = 0 to lines - 1 do
                 T.flush (base + (i * line_bytes))
               done;
               T.fence ();
               elapsed := T.now () - t0);
         };
       ]);
  !elapsed

let fshr_count ?(counts = [ 1; 2; 4; 8; 16 ]) () =
  Series.v "32KiB flush"
    (List.map
       (fun n ->
         let params = { Params.boom_default with Params.n_fshrs = n } in
         float_of_int n, float_of_int (flush_region_cycles params ~lines:512))
       counts)

let queue_depth ?(depths = [ 0; 1; 2; 4; 8; 16 ]) () =
  Series.v "64-line store+flush burst"
    (List.map
       (fun d ->
         let params = { Params.boom_default with Params.flush_queue_depth = d } in
         float_of_int d, float_of_int (flush_region_cycles params ~lines:64))
       depths)

(* Fig. 13's redundant workload at one size under a given config. *)
let redundant_cycles params =
  let series =
    Micro.redundant ~params ~kind:Message.Wb_clean
      ~skip_it:params.Params.skip_it ~threads:1 ~redundant:10 ~sizes:[ 4096 ] ~repeats:3 ()
  in
  match series.Series.points with [ p ] -> p.Series.y | _ -> nan

let skip_decomposition () =
  let base = Params.boom_default in
  [
    ( "no-skip-at-all",
      { base with Params.skip_it = false; l2_trivial_skip = false; coalescing = false } );
    ( "l2-trivial-only",
      { base with Params.skip_it = false; l2_trivial_skip = true; coalescing = false } );
    ( "full-skip-it",
      { base with Params.skip_it = true; l2_trivial_skip = true; coalescing = false } );
  ]
  |> List.map (fun (label, params) -> Series.v label [ 4096., redundant_cycles params ])

let data_array_width () =
  [ "wide-1cycle", true; "narrow-8cycle", false ]
  |> List.map (fun (label, wide) ->
       let params = { Params.boom_default with Params.wide_data_array = wide } in
       Series.v label
         (List.map
            (fun lines ->
              float_of_int (lines * line_bytes),
              float_of_int (flush_region_cycles params ~lines))
            [ 1; 64; 512 ]))

(* The Fig. 13 naive workload with queue coalescing on vs off: when the
   FSHRs back up, queued same-line requests merge, so the flush queue
   itself filters most redundancy — which is why coalescing is off in the
   default calibration (see Params). *)
let coalescing () =
  [ "coalescing-on", true; "coalescing-off", false ]
  |> List.map (fun (label, coalescing) ->
       let params = { Params.boom_default with Params.coalescing } in
       Series.v label [ 4096., redundant_cycles params ])

(* §7.4's closing hypothesis: a deeper hierarchy increases writeback
   latencies — measure how the Fig. 13 redundant-writeback workload and the
   single-line latency respond to a memory-side L3. *)
let hierarchy_depth () =
  [ "l2-only", Params.boom_default; "with-l3", Params.with_l3 Params.boom_default ]
  |> List.concat_map (fun (label, base) ->
       let single params =
         let series =
           Micro.writeback_sweep ~params ~kind:Message.Wb_flush ~threads:1 ~sizes:[ 64 ]
             ~repeats:1 ()
         in
         match series.Series.points with [ p ] -> p.Series.y | _ -> nan
       in
       [
         Series.v (label ^ "/single-flush") [ 64., single base ];
         Series.v (label ^ "/naive")
           [ 4096., redundant_cycles { base with Params.skip_it = false } ];
         Series.v (label ^ "/skip-it")
           [ 4096., redundant_cycles { base with Params.skip_it = true } ];
       ])

(* Contended vs non-contended writebacks (Fig. 9 is non-contended): all
   threads flushing the same region exercise cross-core probes and the
   §5.4.1 interlocks. *)
let contention () =
  List.concat_map
    (fun threads ->
      [
        (let s =
           Micro.writeback_sweep ~kind:Message.Wb_flush ~threads ~sizes:[ 4096 ]
             ~repeats:1 ()
         in
         { s with Series.label = Printf.sprintf "disjoint/%dT" threads });
        Micro.contended_sweep ~kind:Message.Wb_flush ~threads ~sizes:[ 4096 ] ~repeats:1 ();
      ])
    [ 1; 2; 4; 8 ]

(* Access skew concentrates redundant writebacks on hot lines — the regime
   Skip It targets.  Hash-table throughput under automatic persistence,
   uniform vs Zipf(0.99) keys, Skip It vs plain. *)
let skew () =
  let base =
    { Ds_bench.default_workload with Ds_bench.key_range = 1024; prefill = 512; window = 250_000 }
  in
  [ "uniform", 0.; "zipf-0.99", 0.99 ]
  |> List.concat_map (fun (label, skew) ->
       let w = { base with Ds_bench.skew } in
       let tput spec =
         Ds_bench.throughput ~kind:Skipit_pds.Set_ops.Hash_set
           ~mode:Skipit_persist.Pctx.Automatic ~spec w
       in
       [
         Series.v (label ^ "/plain") [ 1024., tput Ds_bench.Plain ];
         Series.v (label ^ "/skip-it") [ 1024., tput Ds_bench.Skipit ];
       ])

let run_all ppf =
  let section title series ~x_name =
    Format.fprintf ppf "@,== Ablation: %s ==@," title;
    Series.pp_table ~x_name ppf series
  in
  section "FSHR count (writeback MLP)" [ fshr_count () ] ~x_name:"fshrs";
  section "flush queue depth (early commit)" [ queue_depth () ] ~x_name:"depth";
  section "redundant-writeback skip decomposition" (skip_decomposition ()) ~x_name:"bytes";
  section "L1 data-array width (fill_buffer)" (data_array_width ()) ~x_name:"bytes";
  section "flush-queue coalescing on the redundant-writeback workload" (coalescing ())
    ~x_name:"bytes";
  section "hierarchy depth (memory-side L3, §7.4 hypothesis)" (hierarchy_depth ())
    ~x_name:"bytes";
  section "contended vs disjoint writebacks (4 KiB)" (contention ()) ~x_name:"bytes";
  section "key skew (hash table, automatic persistence, ops/kcycle)" (skew ())
    ~x_name:"keys"
