type point = { x : float; y : float }
type t = { label : string; points : point list }

let v label pairs = { label; points = List.map (fun (x, y) -> { x; y }) pairs }
let map_y f t = { t with points = List.map (fun p -> { p with y = f p.y }) t.points }

let xs series =
  List.concat_map (fun s -> List.map (fun p -> p.x) s.points) series
  |> List.sort_uniq compare

let y_at s x =
  List.find_opt (fun p -> p.x = x) s.points |> Option.map (fun p -> p.y)

let pp_table ?(x_name = "x") ?(y_name = "") ppf series =
  let cols = List.map (fun s -> s.label) series in
  let width =
    List.fold_left (fun acc label -> max acc (String.length label + 2)) 12 cols
  in
  if y_name <> "" then Format.fprintf ppf "# y: %s@," y_name;
  Format.fprintf ppf "%-12s" x_name;
  List.iter (fun label -> Format.fprintf ppf "%*s" width label) cols;
  Format.fprintf ppf "@,";
  List.iter
    (fun x ->
      Format.fprintf ppf "%-12s" (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          match y_at s x with
          | Some y ->
            let text = if Float.abs y < 10. then Printf.sprintf "%.2f" y else Printf.sprintf "%.1f" y in
            Format.fprintf ppf "%*s" width text
          | None -> Format.fprintf ppf "%*s" width "-")
        series;
      Format.fprintf ppf "@,")
    (xs series)

let pp_csv ppf series =
  Format.fprintf ppf "x,%s@," (String.concat "," (List.map (fun s -> s.label) series));
  List.iter
    (fun x ->
      Format.fprintf ppf "%g" x;
      List.iter
        (fun s ->
          match y_at s x with
          | Some y -> Format.fprintf ppf ",%g" y
          | None -> Format.fprintf ppf ",")
        series;
      Format.fprintf ppf "@,")
    (xs series)

let bytes_label n =
  if n >= 1024 * 1024 && n mod (1024 * 1024) = 0 then Printf.sprintf "%dMiB" (n / 1024 / 1024)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dKiB" (n / 1024)
  else Printf.sprintf "%dB" n
