(** Text-format instruction traces.

    A trace is a tiny assembly-like program, one instruction per line,
    organised in per-core sections — enough to script any experiment against
    the simulator without writing OCaml:

    {v
    # producer/consumer over one line
    core 0
      sd 0x1000 42
      cbo.clean 0x1000
      fence
    core 1
      delay 200
      ld 0x1000
    v}

    Instructions: [ld A], [sd A V], [cas A EXPECTED DESIRED],
    [cbo.clean A], [cbo.flush A], [cbo.inval A], [cbo.zero A], [fence],
    [delay N].  Addresses and values accept decimal or [0x] hex.  [#]
    starts a comment.  Repetition: [repeat N] ... [end] blocks may nest. *)

module Instr = Skipit_cpu.Instr

type t = (int * Instr.t list) list
(** Per-core instruction streams, core ids ascending. *)

val parse : string -> (t, string) result
(** Parse a whole program from source text; errors carry line numbers. *)

val load_file : string -> (t, string) result

val max_core : t -> int

val run : Skipit_core.System.t -> t -> int * int array
(** Execute every stream as a simulated thread; returns the final cycle and
    each core's loaded-value xor-checksum (a cheap way for trace authors to
    assert on data flow). *)

val pp : Format.formatter -> t -> unit
(** Print a parseable rendering of the program. *)
