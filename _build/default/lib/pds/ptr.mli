(** Tagged-pointer helpers for the lock-free structures.

    Simulated node addresses are at least 8-byte aligned, so the low three
    bits of a pointer word are free.  The structures use:

    - bit 0 — the Harris {e mark} ("the node this edge leads to is logically
      deleted");
    - bit 1 — the Natarajan-Mittal {e tag} ("this edge's subtree is being
      restructured; do not insert under it").

    These low bits never collide with Link-and-Persist's bit 62 — the BST is
    excluded from that strategy for the algorithmic reason the paper gives
    (its CAS-based edge manipulation owns the word's spare bits), not a
    physical bit clash. *)

val mark_bit : int
val tag_bit : int

val addr_of : int -> int
(** Strip both bits. *)

val is_marked : int -> bool
val is_tagged : int -> bool
val with_mark : int -> int
val with_tag : int -> int
val strip : int -> int
(** Alias of {!addr_of}. *)

val null : int
(** The null simulated pointer (0). *)

val is_null : int -> bool
