(** Node layout over simulated memory.

    A node is [fields] logical 64-bit words laid out with the persistence
    strategy's stride ({!Skipit_persist.Strategy.field_stride}: FliT-adjacent
    interleaves a counter word after each field).  Nodes are aligned to the
    smallest power of two covering their footprint (capped at one cache
    line) so small nodes never straddle lines — one persist point covers
    them. *)

val alloc : Skipit_mem.Allocator.t -> stride:int -> fields:int -> int
(** Fresh node base address.  Allocation is address arithmetic only (no
    simulated memory traffic), matching a warmed-up pool allocator. *)

val field : stride:int -> int -> int -> int
(** [field ~stride base i] is the address of field [i]. *)
