type t = { buckets : Harris_list.t array }

let bucket_of t key =
  let h = key * 0x9E3779B97F4A7C1 in
  t.buckets.((h lsr 19) land max_int mod Array.length t.buckets)

let create p alloc ~buckets =
  if buckets <= 0 then invalid_arg "Hash_table.create: no buckets";
  { buckets = Array.init buckets (fun _ -> Harris_list.create p alloc) }

let insert t p key = Harris_list.insert (bucket_of t key) p key
let delete t p key = Harris_list.delete (bucket_of t key) p key
let contains t p key = Harris_list.contains (bucket_of t key) p key

let repair t p =
  Array.fold_left (fun acc b -> acc + Harris_list.repair b p) 0 t.buckets

let elements_unsafe t system =
  Array.to_list t.buckets
  |> List.concat_map (fun b -> Harris_list.to_list_unsafe b system)
  |> List.sort compare
