let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let alloc allocator ~stride ~fields =
  if fields <= 0 then invalid_arg "Node.alloc: no fields";
  let bytes = stride * fields in
  let align = min 64 (next_pow2 bytes 8) in
  Skipit_mem.Allocator.alloc allocator ~align bytes

let field ~stride base i = base + (i * stride)
