let mark_bit = 1
let tag_bit = 2
let addr_of p = p land lnot 3
let is_marked p = p land mark_bit <> 0
let is_tagged p = p land tag_bit <> 0
let with_mark p = p lor mark_bit
let with_tag p = p lor tag_bit
let strip = addr_of
let null = 0
let is_null p = addr_of p = 0
