lib/pds/ms_queue.ml: List Node Ptr Skipit_core Skipit_mem Skipit_persist
