lib/pds/set_ops.mli: Skipit_core Skipit_mem Skipit_persist
