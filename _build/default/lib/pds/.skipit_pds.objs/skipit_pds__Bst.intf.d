lib/pds/bst.mli: Skipit_core Skipit_mem Skipit_persist
