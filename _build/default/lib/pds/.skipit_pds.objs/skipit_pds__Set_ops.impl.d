lib/pds/set_ops.ml: Bst Harris_list Hash_table Skipit_core Skipit_persist Skiplist
