lib/pds/node.ml: Skipit_mem
