lib/pds/skiplist.mli: Skipit_core Skipit_mem Skipit_persist
