lib/pds/hash_table.mli: Skipit_core Skipit_mem Skipit_persist
