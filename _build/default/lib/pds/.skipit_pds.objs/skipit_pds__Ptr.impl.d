lib/pds/ptr.ml:
