lib/pds/node.mli: Skipit_mem
