lib/pds/harris_list.mli: Skipit_core Skipit_mem Skipit_persist
