lib/pds/ptr.mli:
