lib/pds/ms_queue.mli: Skipit_core Skipit_mem Skipit_persist
