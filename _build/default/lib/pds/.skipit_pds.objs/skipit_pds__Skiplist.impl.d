lib/pds/skiplist.ml: Array List Node Ptr Skipit_core Skipit_mem Skipit_persist
