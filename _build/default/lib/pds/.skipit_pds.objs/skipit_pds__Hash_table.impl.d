lib/pds/hash_table.ml: Array Harris_list List
