lib/pds/harris_list.ml: List Node Ptr Skipit_core Skipit_mem Skipit_persist
