(** The Natarajan-Mittal lock-free external binary search tree [53].

    Internal nodes route; leaves hold the keys.  Deletion is coordinated
    with two bits stored {e inside} child-pointer words: a {e flag} (bit 0)
    injected on the edge to the victim leaf, and a {e tag} (bit 1) on its
    sibling edge that freezes the parent before the splice.  Because the
    algorithm owns spare pointer-word bits, it is the data structure the
    paper singles out as incompatible with Link-and-Persist.

    Keys must lie in [\[1, 2{^49})].  All operations must run inside a
    {!Skipit_core.Thread} task. *)

type t

val create : Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> t
val insert : t -> Skipit_persist.Pctx.t -> int -> bool
val delete : t -> Skipit_persist.Pctx.t -> int -> bool
val contains : t -> Skipit_persist.Pctx.t -> int -> bool

val repair : t -> Skipit_persist.Pctx.t -> int
(** Post-crash recovery: find every leaf whose incoming edge carries a
    persisted deletion flag (an interrupted NM delete) and complete its
    cleanup durably.  Returns the number of cleanups performed. *)

val elements_unsafe : t -> Skipit_core.System.t -> int list
(** Untimed sorted snapshot of the present keys (tests only). *)
