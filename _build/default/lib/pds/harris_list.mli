(** Harris's lock-free sorted linked list [31], persistence-instrumented.

    The set data structure of §7.4: nodes are (key, next) pairs in simulated
    memory, deletion is two-phase (logical mark on the next pointer — bit 0
    — then physical unlinking, with traversals helping to snip marked
    nodes).  All shared accesses go through the {!Skipit_persist.Pctx}, so
    the same code runs under every strategy × persistence-mode combination.

    Keys must lie in [\[1, 2{^49})].  All functions must run inside a
    {!Skipit_core.Thread} task. *)

type t

val create : Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> t
(** Build head/tail sentinels. *)

val insert : t -> Skipit_persist.Pctx.t -> int -> bool
(** [false] if the key was already present. *)

val delete : t -> Skipit_persist.Pctx.t -> int -> bool
val contains : t -> Skipit_persist.Pctx.t -> int -> bool

val repair : t -> Skipit_persist.Pctx.t -> int
(** Post-crash recovery: walk the whole list and physically unlink (and
    persist) every node whose logical-deletion mark survived the crash but
    whose unlinking did not.  Returns the number of nodes unlinked.  Safe to
    run at any time (it only completes interrupted deletions). *)

val to_list_unsafe : t -> Skipit_core.System.t -> int list
(** Untimed functional snapshot of the unmarked keys (tests only; reads the
    coherent memory image directly). *)
