module Pctx = Skipit_persist.Pctx
module Allocator = Skipit_mem.Allocator

(* Sentinel keys, above every legal key (legal keys < 2^49). *)
let inf0 = 1 lsl 51
let inf1 = inf0 + 1
let inf2 = inf0 + 2

(* Node layout: 0 = key (immutable), 1 = left, 2 = right.  A leaf has null
   children.  Child-pointer words carry the NM flag (bit 0) and tag
   (bit 1). *)
type t = { root : int; s_node : int; alloc : Allocator.t; stride : int }

let fkey ~stride n = Node.field ~stride n 0
let fleft ~stride n = Node.field ~stride n 1
let fright ~stride n = Node.field ~stride n 2

let alloc_node t p ~key ~left ~right =
  let n = Node.alloc t.alloc ~stride:t.stride ~fields:3 in
  Pctx.write p (fkey ~stride:t.stride n) key;
  Pctx.write p (fleft ~stride:t.stride n) left;
  Pctx.write p (fright ~stride:t.stride n) right;
  (* Cover the node's footprint (may span two lines under FliT-adjacent's
     doubled stride). *)
  Pctx.persist p (fkey ~stride:t.stride n);
  Pctx.persist p (fright ~stride:t.stride n);
  n

let create p alloc =
  let stride = Pctx.stride p in
  let t = { root = 0; s_node = 0; alloc; stride } in
  let t = { t with root = Node.alloc alloc ~stride ~fields:3 } in
  let leaf key = alloc_node t p ~key ~left:Ptr.null ~right:Ptr.null in
  let l0 = leaf inf0 in
  let l1 = leaf inf1 in
  let l2 = leaf inf2 in
  let s_node = alloc_node t p ~key:inf1 ~left:l0 ~right:l1 in
  Pctx.write p (fkey ~stride t.root) inf2;
  Pctx.write p (fleft ~stride t.root) s_node;
  Pctx.write p (fright ~stride t.root) l2;
  Pctx.persist p (fkey ~stride t.root);
  Pctx.persist p (fright ~stride t.root);
  Pctx.commit p ~updated:true;
  { t with s_node }

let key_of t p n = Pctx.read_traverse p (fkey ~stride:t.stride n)

(* Address of the child field of [n] on the search path for [key]. *)
let edge t p n key =
  if key < key_of t p n then fleft ~stride:t.stride n else fright ~stride:t.stride n

type seek_record = {
  ancestor : int;
  successor : int;
  parent : int;
  leaf : int;
  parent_field : int;  (** Raw edge word parent→leaf (flag/tag visible). *)
}

let is_internal t p n = not (Ptr.is_null (Pctx.read_traverse p (fleft ~stride:t.stride n)))

let seek t p key =
  let rec descend ~ancestor ~successor ~parent ~parent_field ~leaf =
    if not (is_internal t p leaf) then { ancestor; successor; parent; leaf; parent_field }
    else begin
      let ancestor, successor =
        if not (Ptr.is_tagged parent_field) then parent, leaf else ancestor, successor
      in
      let current_field = Pctx.read_traverse p (edge t p leaf key) in
      descend ~ancestor ~successor ~parent:leaf ~parent_field:current_field
        ~leaf:(Ptr.addr_of current_field)
    end
  in
  let parent_field = Pctx.read_traverse p (fleft ~stride:t.stride t.s_node) in
  descend ~ancestor:t.root ~successor:t.s_node ~parent:t.s_node ~parent_field
    ~leaf:(Ptr.addr_of parent_field)

(* Remove the flagged leaf and its parent by splicing the (tagged) sibling
   edge up to the ancestor (NM cleanup).  Returns true when this call
   performed the splice. *)
let cleanup t p key sr =
  let stride = t.stride in
  let child_addr = edge t p sr.parent key in
  let sibling_of addr = if addr = fleft ~stride sr.parent then fright ~stride sr.parent else fleft ~stride sr.parent in
  let child_field = Pctx.read_critical p child_addr in
  (* The flagged edge points at the victim leaf; the other edge survives. *)
  let sibling_addr = if Ptr.is_marked child_field then sibling_of child_addr else child_addr in
  (* Tag the surviving edge so no insertion slips beneath a dying parent. *)
  let rec tag_edge tries =
    let raw = Pctx.read_critical p sibling_addr in
    if Ptr.is_tagged raw then raw
    else if Pctx.cas p sibling_addr ~expected:raw ~desired:(Ptr.with_tag raw) then
      Ptr.with_tag raw
    else if tries > 0 then tag_edge (tries - 1)
    else Pctx.read_critical p sibling_addr
  in
  let tagged = tag_edge 16 in
  let desired =
    (* Keep a flag travelling with the sibling if it had one. *)
    if Ptr.is_marked tagged then Ptr.with_mark (Ptr.addr_of tagged) else Ptr.addr_of tagged
  in
  let succ_addr = edge t p sr.ancestor key in
  let ok = Pctx.cas p succ_addr ~expected:sr.successor ~desired in
  if ok then Pctx.persist p succ_addr;
  ok

let rec insert t p key =
  if key <= 0 || key >= inf0 then invalid_arg "Bst.insert: key out of range";
  let sr = seek t p key in
  let leaf_key = key_of t p sr.leaf in
  if leaf_key = key then begin
    Pctx.commit p ~updated:false;
    false
  end
  else begin
    let new_leaf = alloc_node t p ~key ~left:Ptr.null ~right:Ptr.null in
    let left, right = if key < leaf_key then new_leaf, sr.leaf else sr.leaf, new_leaf in
    let internal = alloc_node t p ~key:(max key leaf_key) ~left ~right in
    let child_addr = edge t p sr.parent key in
    if Pctx.cas p child_addr ~expected:sr.leaf ~desired:internal then begin
      Pctx.persist p child_addr;
      Pctx.commit p ~updated:true;
      true
    end
    else begin
      (* Help a stalled deletion on this edge before retrying. *)
      let raw = Pctx.read_critical p child_addr in
      if Ptr.addr_of raw = sr.leaf && (Ptr.is_marked raw || Ptr.is_tagged raw) then
        ignore (cleanup t p key sr);
      insert t p key
    end
  end

let delete t p key =
  let rec injection () =
    let sr = seek t p key in
    if key_of t p sr.leaf <> key then begin
      Pctx.commit p ~updated:false;
      false
    end
    else begin
      let child_addr = edge t p sr.parent key in
      if Pctx.cas p child_addr ~expected:sr.leaf ~desired:(Ptr.with_mark sr.leaf) then begin
        (* Injection = linearization of the delete; persist the flag. *)
        Pctx.persist p child_addr;
        if cleanup t p key sr then begin
          Pctx.commit p ~updated:true;
          true
        end
        else cleanup_mode sr.leaf
      end
      else begin
        let raw = Pctx.read_critical p child_addr in
        if Ptr.addr_of raw = sr.leaf && (Ptr.is_marked raw || Ptr.is_tagged raw) then
          ignore (cleanup t p key sr);
        injection ()
      end
    end
  and cleanup_mode target =
    let sr = seek t p key in
    if sr.leaf <> target then begin
      (* Someone else finished our cleanup. *)
      Pctx.commit p ~updated:true;
      true
    end
    else if cleanup t p key sr then begin
      Pctx.commit p ~updated:true;
      true
    end
    else cleanup_mode target
  in
  injection ()

let contains t p key =
  let sr = seek t p key in
  let found = key_of t p sr.leaf = key && not (Ptr.is_marked sr.parent_field) in
  Pctx.commit p ~updated:false;
  found

let repair t p =
  (* Collect the keys of flagged leaves with an untimed-ish traversal using
     traverse reads, then run each interrupted deletion's cleanup through
     the ordinary seek path. *)
  let stride = t.stride in
  let flagged = ref [] in
  let rec walk node =
    if not (Ptr.is_null node) then begin
      let left = Pctx.read_traverse p (fleft ~stride node) in
      let right = Pctx.read_traverse p (fright ~stride node) in
      if not (Ptr.is_null left) then begin
        (if Ptr.is_marked left then
           let key = Pctx.read_traverse p (fkey ~stride (Ptr.addr_of left)) in
           if key < inf0 then flagged := key :: !flagged);
        (if Ptr.is_marked right then
           let key = Pctx.read_traverse p (fkey ~stride (Ptr.addr_of right)) in
           if key < inf0 then flagged := key :: !flagged);
        walk (Ptr.addr_of left);
        walk (Ptr.addr_of right)
      end
    end
  in
  walk t.s_node;
  let repaired = ref 0 in
  List.iter
    (fun key ->
      let rec finish attempts =
        if attempts > 0 then begin
          let sr = seek t p key in
          if key_of t p sr.leaf = key && Ptr.is_marked sr.parent_field then
            if cleanup t p key sr then incr repaired else finish (attempts - 1)
        end
      in
      finish 8)
    !flagged;
  Pctx.commit p ~updated:(!repaired > 0);
  !repaired

let elements_unsafe t system =
  let module S = Skipit_core.System in
  let strip v = v land lnot Skipit_persist.Strategy.lap_mask in
  let stride = t.stride in
  let rec walk node flagged acc =
    if Ptr.is_null node then acc
    else begin
      let left = strip (S.peek_word system (fleft ~stride node)) in
      let right = strip (S.peek_word system (fright ~stride node)) in
      if Ptr.is_null left then begin
        (* Leaf. *)
        let key = strip (S.peek_word system (fkey ~stride node)) in
        if key < inf0 && not flagged then key :: acc else acc
      end
      else begin
        let acc = walk (Ptr.addr_of left) (Ptr.is_marked left) acc in
        walk (Ptr.addr_of right) (Ptr.is_marked right) acc
      end
    end
  in
  walk t.s_node false [] |> List.sort compare
