module Pctx = Skipit_persist.Pctx
module Allocator = Skipit_mem.Allocator

let tail_key = 1 lsl 50

(* Node layout: field 0 = key (immutable), field 1 = next (tagged per Ptr). *)
type t = { head : int; tail : int; alloc : Allocator.t; stride : int }

let key_field ~stride node = Node.field ~stride node 0
let next_field ~stride node = Node.field ~stride node 1

let alloc_node t p ~key ~next =
  let node = Node.alloc t.alloc ~stride:t.stride ~fields:2 in
  Pctx.write p (key_field ~stride:t.stride node) key;
  Pctx.write p (next_field ~stride:t.stride node) next;
  (* One persist covers the node: both fields share its cache line. *)
  Pctx.persist p (key_field ~stride:t.stride node);
  node

let create p alloc =
  let stride = Pctx.stride p in
  let tail = Node.alloc alloc ~stride ~fields:2 in
  Pctx.write p (key_field ~stride tail) tail_key;
  Pctx.write p (next_field ~stride tail) Ptr.null;
  let head = Node.alloc alloc ~stride ~fields:2 in
  Pctx.write p (key_field ~stride head) 0;
  Pctx.write p (next_field ~stride head) tail;
  Pctx.persist p (key_field ~stride tail);
  Pctx.persist p (key_field ~stride head);
  Pctx.commit p ~updated:true;
  { head; tail; alloc; stride }

let key_of t p node = Pctx.read_traverse p (key_field ~stride:t.stride node)
let next_of t p node = Pctx.read_traverse p (next_field ~stride:t.stride node)

(* Harris find: returns (pred, curr) with [curr] the first node whose key is
   >= [key]; snips marked nodes on the way (physical deletion). *)
let rec find t p key =
  let pred = ref t.head in
  let curr = ref (Ptr.addr_of (next_of t p !pred)) in
  let restart = ref false in
  let result = ref None in
  while !result = None && not !restart do
    let succ_raw = ref (next_of t p !curr) in
    (* Snip a run of marked nodes after pred. *)
    while (not !restart) && Ptr.is_marked !succ_raw do
      let unmarked_succ = Ptr.addr_of !succ_raw in
      if Pctx.cas p (next_field ~stride:t.stride !pred) ~expected:!curr ~desired:unmarked_succ
      then begin
        Pctx.persist p (next_field ~stride:t.stride !pred);
        curr := unmarked_succ;
        succ_raw := next_of t p !curr
      end
      else restart := true
    done;
    if not !restart then begin
      if key_of t p !curr >= key then result := Some (!pred, !curr)
      else begin
        pred := !curr;
        curr := Ptr.addr_of !succ_raw
      end
    end
  done;
  match !result with Some r -> r | None -> find t p key

let contains t p key =
  let rec walk node =
    let k = key_of t p node in
    if k < key then walk (Ptr.addr_of (next_of t p node))
    else k = key && not (Ptr.is_marked (next_of t p node))
  in
  let found = walk (Ptr.addr_of (next_of t p t.head)) in
  Pctx.commit p ~updated:false;
  found

let rec insert t p key =
  if key <= 0 || key >= tail_key then invalid_arg "Harris_list.insert: key out of range";
  let pred, curr = find t p key in
  if key_of t p curr = key then begin
    Pctx.commit p ~updated:false;
    false
  end
  else begin
    let node = alloc_node t p ~key ~next:curr in
    if Pctx.cas p (next_field ~stride:t.stride pred) ~expected:curr ~desired:node then begin
      Pctx.persist p (next_field ~stride:t.stride pred);
      Pctx.commit p ~updated:true;
      true
    end
    else insert t p key
  end

let rec delete t p key =
  let pred, curr = find t p key in
  if key_of t p curr <> key then begin
    Pctx.commit p ~updated:false;
    false
  end
  else begin
    let next_addr = next_field ~stride:t.stride curr in
    let succ_raw = Pctx.read_critical p next_addr in
    if Ptr.is_marked succ_raw then delete t p key
    else if Pctx.cas p next_addr ~expected:succ_raw ~desired:(Ptr.with_mark succ_raw) then begin
      (* Logical deletion is the linearization point; persist it, then try
         to unlink physically (failure is fine — find will snip). *)
      Pctx.persist p next_addr;
      if Pctx.cas p (next_field ~stride:t.stride pred) ~expected:curr
           ~desired:(Ptr.addr_of succ_raw)
      then Pctx.persist p (next_field ~stride:t.stride pred);
      Pctx.commit p ~updated:true;
      true
    end
    else delete t p key
  end

let repair t p =
  let unlinked = ref 0 in
  let rec walk pred =
    let succ_raw = Pctx.read_critical p (next_field ~stride:t.stride pred) in
    let curr = Ptr.addr_of succ_raw in
    if curr = t.tail || Ptr.is_null curr then !unlinked
    else begin
      let curr_next = Pctx.read_critical p (next_field ~stride:t.stride curr) in
      if Ptr.is_marked curr_next then begin
        (* Interrupted deletion: finish the unlink durably. *)
        if
          Pctx.cas p (next_field ~stride:t.stride pred) ~expected:succ_raw
            ~desired:(Ptr.addr_of curr_next)
        then begin
          Pctx.persist p (next_field ~stride:t.stride pred);
          incr unlinked;
          walk pred
        end
        else walk pred
      end
      else walk curr
    end
  in
  let n = walk t.head in
  Pctx.commit p ~updated:(n > 0);
  n

let to_list_unsafe t system =
  let module S = Skipit_core.System in
  let strip v = v land lnot Skipit_persist.Strategy.lap_mask in
  let rec walk node acc =
    if node = t.tail || Ptr.is_null node then List.rev acc
    else begin
      let key = strip (S.peek_word system (key_field ~stride:t.stride node)) in
      let next_raw = strip (S.peek_word system (next_field ~stride:t.stride node)) in
      let acc = if Ptr.is_marked next_raw then acc else key :: acc in
      walk (Ptr.addr_of next_raw) acc
    end
  in
  walk (Ptr.addr_of (strip (S.peek_word system (next_field ~stride:t.stride t.head)))) []
