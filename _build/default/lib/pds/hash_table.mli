(** Lock-free hash table [23]: a fixed array of Harris-list buckets.

    The bucket count is fixed at creation (the paper's workloads size it for
    a load factor around one), so resizing — orthogonal to writeback
    behaviour — is out of scope.  Keys hash to a bucket with Fibonacci
    hashing; within a bucket the list provides lock-freedom and
    persistence. *)

type t

val create : Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> buckets:int -> t
val insert : t -> Skipit_persist.Pctx.t -> int -> bool
val delete : t -> Skipit_persist.Pctx.t -> int -> bool
val contains : t -> Skipit_persist.Pctx.t -> int -> bool

val repair : t -> Skipit_persist.Pctx.t -> int
(** Post-crash recovery over every bucket (see {!Harris_list.repair}). *)

val elements_unsafe : t -> Skipit_core.System.t -> int list
(** Untimed snapshot, sorted (tests only). *)
