lib/core/system.mli: Skipit_cache Skipit_cpu Skipit_l1 Skipit_l2 Skipit_mem
