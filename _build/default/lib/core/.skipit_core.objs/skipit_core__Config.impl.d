lib/core/config.ml: Skipit_cache
