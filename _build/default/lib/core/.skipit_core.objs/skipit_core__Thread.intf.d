lib/core/thread.mli: System
