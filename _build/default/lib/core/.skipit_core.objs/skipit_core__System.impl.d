lib/core/system.ml: Array List Option Perm Printf Skipit_cache Skipit_cpu Skipit_l1 Skipit_l2 Skipit_mem Skipit_sim Skipit_tilelink String
