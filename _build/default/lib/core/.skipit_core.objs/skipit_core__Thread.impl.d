lib/core/thread.ml: Effect List Skipit_cpu System
