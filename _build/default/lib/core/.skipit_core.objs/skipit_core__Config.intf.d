lib/core/config.mli: Skipit_cache
