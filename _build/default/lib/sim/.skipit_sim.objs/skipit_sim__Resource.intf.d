lib/sim/resource.mli:
