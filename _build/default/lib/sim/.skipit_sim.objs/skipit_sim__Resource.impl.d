lib/sim/resource.ml: Array Printf
