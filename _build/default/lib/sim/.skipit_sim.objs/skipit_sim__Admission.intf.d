lib/sim/admission.mli:
