lib/sim/rng.mli:
