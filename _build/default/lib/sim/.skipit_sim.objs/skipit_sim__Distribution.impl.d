lib/sim/distribution.ml: Array Float Rng Stdlib
