lib/sim/admission.ml: Queue
