(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single seed.  The generator is the
    splitmix64 algorithm: tiny state, excellent statistical quality for
    simulation workloads, and trivially splittable so independent components
    (cores, workload generators) can derive independent streams. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of [t]'s
    future output.  Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
