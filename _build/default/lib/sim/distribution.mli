(** Key and access-pattern distributions for workload generation.

    The data-structure benchmarks (§7.4) draw keys uniformly; the ablation
    benches additionally exercise skewed (Zipfian) access so contention-driven
    effects of Skip It can be studied. *)

type t

val uniform : lo:int -> hi:int -> t
(** Uniform integer keys in [\[lo, hi\]] inclusive. *)

val zipf : n:int -> theta:float -> t
(** Zipfian over [\[0, n)] with skew [theta] (0 = uniform-ish, 0.99 = highly
    skewed), using the standard YCSB-style rejection-free inverse-CDF
    construction. *)

val constant : int -> t
(** Always the same value; useful in tests. *)

val sample : t -> Rng.t -> int
(** Draw one value. *)
