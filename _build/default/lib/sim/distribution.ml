type t =
  | Uniform of int * int
  | Zipf of { n : int; cdf : float array }
  | Constant of int

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Distribution.uniform: hi < lo";
  Uniform (lo, hi)

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Distribution.zipf: n <= 0";
  if theta < 0. then invalid_arg "Distribution.zipf: negative theta";
  (* Precompute the CDF once; sampling is a binary search.  n is at most a
     few million in our workloads so the O(n) setup is fine. *)
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  Zipf { n; cdf }

let constant v = Constant v

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform (lo, hi) -> Rng.int_in rng ~lo ~hi
  | Zipf { n; cdf } ->
    let u = Rng.float rng in
    (* Smallest index with cdf.(i) >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
      end
    in
    Stdlib.min (search 0 (n - 1)) (n - 1)
