lib/mem/dram.mli: Backing Persist_log
