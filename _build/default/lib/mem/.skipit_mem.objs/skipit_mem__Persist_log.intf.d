lib/mem/persist_log.mli:
