lib/mem/allocator.mli:
