lib/mem/backing.mli:
