lib/mem/dram.ml: Backing Persist_log Resource Skipit_sim
