lib/mem/backing.ml: Array Hashtbl Printf
