lib/mem/persist_log.ml: List
