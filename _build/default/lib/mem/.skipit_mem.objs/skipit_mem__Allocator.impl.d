lib/mem/allocator.ml:
