(** Ordered record of persist events — the observability needed to test the
    paper's §4 memory semantics (Fig. 5).

    The DRAM model reports every line-sized write (the moment data becomes
    durable) to an attached log.  Tests replay the three §4 scenarios and
    assert exactly what the semantics guarantee:

    - plain stores persist in {e no} particular order (writeback-cache
      eviction order);
    - [writeback(c)] orders only the earlier writes {e to c's line} before
      the writeback's completion, not other lines;
    - [writeback(c); fence()] orders them before everything the thread does
      after the fence. *)

type event = { addr : int; time : int; seq : int }
(** A line became durable: line base address, simulated completion cycle,
    and a global sequence number (ties in [time] are broken by arrival). *)

type t

val create : unit -> t

val record : t -> addr:int -> time:int -> unit
(** Called by the DRAM model on each durable line write. *)

val events : t -> event list
(** Chronological (sequence) order. *)

val persists_of : t -> addr:int -> event list
(** Events for one line (any address within it, 64 B lines). *)

val persisted_before : t -> int -> int -> bool
(** [persisted_before t a b]: both lines have persisted and the {e last}
    persist of [a]'s line completed no later than the {e first} persist of
    [b]'s line. *)

val first_persist_time : t -> int -> int option
val clear : t -> unit
val length : t -> int
