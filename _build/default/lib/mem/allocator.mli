(** Bump allocator over the simulated physical address space.

    The persistent data structures allocate nodes from simulated memory; a
    simple monotone bump allocator is all they need (the originals in the
    paper use jemalloc/NVM allocators, but allocation policy is orthogonal to
    writeback behaviour — only {e placement} matters, which is why alignment
    and padding controls are provided). *)

type t

val create : ?base:int -> unit -> t
(** [create ~base ()] starts allocating at byte address [base]
    (default [0x1_0000], leaving low addresses free for test fixtures). *)

val alloc : t -> ?align:int -> int -> int
(** [alloc t ~align bytes] returns the base address of a fresh region of
    [bytes] bytes aligned to [align] (default 8).  [align] must be a power of
    two. *)

val alloc_line : t -> line_bytes:int -> int
(** Allocate one whole cache line, line-aligned — used when false sharing
    must be avoided (e.g. FliT's padded counters). *)

val used : t -> int
(** Bytes allocated so far. *)

val next : t -> int
(** The next address that would be returned (before alignment). *)
