type t = (int, int) Hashtbl.t

let word_bytes = 8

let create () : t = Hashtbl.create 4096

let check_aligned addr =
  if addr land (word_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Backing: unaligned word address %#x" addr)

let read_word t addr =
  check_aligned addr;
  match Hashtbl.find_opt t addr with Some v -> v | None -> 0

let write_word t addr v =
  check_aligned addr;
  Hashtbl.replace t addr v

let line_base ~line_bytes addr = addr land lnot (line_bytes - 1)

let read_line t ~line_bytes addr =
  let base = line_base ~line_bytes addr in
  Array.init (line_bytes / word_bytes) (fun i -> read_word t (base + (i * word_bytes)))

let write_line t ~line_bytes addr data =
  let words = line_bytes / word_bytes in
  if Array.length data <> words then invalid_arg "Backing.write_line: wrong line size";
  let base = line_base ~line_bytes addr in
  Array.iteri (fun i v -> write_word t (base + (i * word_bytes)) v) data

let copy t = Hashtbl.copy t
let iter t f = Hashtbl.iter f t
let footprint t = Hashtbl.length t
