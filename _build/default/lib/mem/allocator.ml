type t = { base : int; mutable cursor : int }

let create ?(base = 0x1_0000) () = { base; cursor = base }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let alloc t ?(align = 8) bytes =
  if bytes < 0 then invalid_arg "Allocator.alloc: negative size";
  if not (is_power_of_two align) then invalid_arg "Allocator.alloc: align not a power of two";
  let aligned = (t.cursor + align - 1) land lnot (align - 1) in
  t.cursor <- aligned + bytes;
  aligned

let alloc_line t ~line_bytes = alloc t ~align:line_bytes line_bytes

let used t = t.cursor - t.base
let next t = t.cursor
