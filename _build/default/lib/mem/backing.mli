(** Sparse word-addressable backing store.

    Models a flat physical address space holding 64-bit words.  Unwritten
    locations read as zero, as freshly-allocated DRAM does in the simulated
    machine.  Addresses are byte addresses; accesses are word (8 B) or line
    granular.  This is the value store shared by the DRAM model and by cache
    data arrays. *)

type t

val word_bytes : int
(** 8. *)

val create : unit -> t

val read_word : t -> int -> int
(** [read_word t addr].  [addr] must be word aligned. *)

val write_word : t -> int -> int -> unit
(** [write_word t addr v]. *)

val read_line : t -> line_bytes:int -> int -> int array
(** [read_line t ~line_bytes addr] reads the [line_bytes/8] words of the line
    containing [addr] (aligned down). *)

val write_line : t -> line_bytes:int -> int -> int array -> unit
(** Inverse of {!read_line}; the array length must be [line_bytes/8]. *)

val copy : t -> t
(** Deep copy — used to snapshot the persistence domain in crash tests. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f addr word] for every word ever written (including
    explicit zero writes). *)

val footprint : t -> int
(** Number of distinct words ever written. *)
