examples/persistent_log.mli:
