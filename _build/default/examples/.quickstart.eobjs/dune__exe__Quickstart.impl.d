examples/quickstart.ml: Printf Skipit_core Skipit_mem
