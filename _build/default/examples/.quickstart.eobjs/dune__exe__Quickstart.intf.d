examples/quickstart.mli:
