examples/dma_buffer.ml: Printf Skipit_core Skipit_mem
