examples/persistent_log.ml: Fun List Printf Skipit_core Skipit_mem
