examples/kv_store.ml: List Option Printf Skipit_core Skipit_pds Skipit_persist
