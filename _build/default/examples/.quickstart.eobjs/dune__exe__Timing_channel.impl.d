examples/timing_channel.ml: List Printf Skipit_core Skipit_mem
