examples/dma_buffer.mli:
