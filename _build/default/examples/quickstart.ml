(* Quickstart: build the paper's platform, issue the new CBO.X instructions,
   and watch what is (and is not) persisted across a crash.

   Run with: dune exec examples/quickstart.exe *)

module System = Skipit_core.System
module Config = Skipit_core.Config

let () =
  (* The §7.1 platform: two SonicBOOM cores, 32 KiB L1s, shared 512 KiB
     inclusive L2, with the Skip It extension enabled. *)
  let sys = System.create (Config.platform ~cores:2 ~skip_it:true ()) in
  let addr = Skipit_mem.Allocator.alloc_line (System.allocator sys) ~line_bytes:64 in

  (* A store is volatile until written back: it lives in core 0's L1. *)
  System.store sys ~core:0 addr 42;
  Printf.printf "stored 42        -> cached=%d persisted=%d\n"
    (System.peek_word sys addr) (System.persisted_word sys addr);

  (* CBO.CLEAN writes the line back but keeps it cached; the FENCE waits for
     the RootReleaseAck (§5.3). *)
  let t0 = System.clock sys ~core:0 in
  System.clean sys ~core:0 addr;
  System.fence sys ~core:0;
  Printf.printf "clean + fence    -> persisted=%d (%d cycles)\n"
    (System.persisted_word sys addr)
    (System.clock sys ~core:0 - t0);

  (* A second clean of the unmodified line is dropped by the skip bit. *)
  let t0 = System.clock sys ~core:0 in
  System.clean sys ~core:0 addr;
  System.fence sys ~core:0;
  Printf.printf "redundant clean  -> %d cycles (Skip It dropped it)\n"
    (System.clock sys ~core:0 - t0);

  (* Cross-core: core 1 updates the same line; coherence probes core 0. *)
  System.store sys ~core:1 addr 43;
  System.flush sys ~core:1 addr;
  System.fence sys ~core:1;
  Printf.printf "core1 store+flush-> persisted=%d\n" (System.persisted_word sys addr);

  (* Power failure: caches vanish, memory survives. *)
  System.store sys ~core:0 addr 99;
  System.crash sys;
  Printf.printf "crash            -> value after recovery=%d (99 was never written back)\n"
    (System.persisted_word sys addr);

  match System.check_coherence sys with
  | Ok () -> print_endline "coherence + skip-bit invariants hold"
  | Error e -> print_endline ("INVARIANT VIOLATION: " ^ e)
