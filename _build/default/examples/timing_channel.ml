(* The security motivation from §1: explicit cache control can mitigate
   microarchitectural timing channels by flushing on-core state across
   protection-domain switches.

   A victim touches one of two secret-dependent cache lines.  A spy sharing
   the core later times accesses to both: the touched one hits (fast),
   leaking the secret bit — a classic reuse-based channel.

   The example demonstrates three configurations:

   1. no flush            -> the channel leaks;
   2. flush, Skip It ON   -> the channel STILL leaks!  The victim's lines
      are clean and persisted, so §6.1's skip bit drops the "redundant"
      flushes — including their invalidation.  Skip It is a persistence
      optimisation; using CBO.FLUSH for isolation requires disabling it (or
      an inval-exempt encoding).  This is a real interaction between the
      paper's §6 mechanism and its §1 security use case, surfaced by the
      reproduction;
   3. flush, Skip It OFF  -> both probes miss; the channel is closed.

   Run with: dune exec examples/timing_channel.exe *)

module System = Skipit_core.System
module Config = Skipit_core.Config

let probe sys addr =
  let t0 = System.clock sys ~core:0 in
  ignore (System.load sys ~core:0 addr);
  System.clock sys ~core:0 - t0

let run_trial ~flush_on_switch ~skip_it ~secret =
  let sys = System.create (Config.platform ~cores:1 ~skip_it ()) in
  let alloc = System.allocator sys in
  let line0 = Skipit_mem.Allocator.alloc_line alloc ~line_bytes:64 in
  let line1 = Skipit_mem.Allocator.alloc_line alloc ~line_bytes:64 in
  (* Victim: touch the secret-dependent line. *)
  ignore (System.load sys ~core:0 (if secret = 0 then line0 else line1));
  (* Context switch: the kernel flushes the victim's working set. *)
  if flush_on_switch then begin
    System.flush sys ~core:0 line0;
    System.flush sys ~core:0 line1;
    System.fence sys ~core:0
  end;
  (* Spy: time both probes; unequal times reveal the secret. *)
  let t_zero = probe sys line0 in
  let t_one = probe sys line1 in
  t_zero, t_one

let leaks ~flush_on_switch ~skip_it =
  List.for_all
    (fun secret ->
      let t_zero, t_one = run_trial ~flush_on_switch ~skip_it ~secret in
      let guess = if t_zero < t_one then 0 else 1 in
      t_zero <> t_one && guess = secret)
    [ 0; 1 ]

let closed ~flush_on_switch ~skip_it =
  List.for_all
    (fun secret ->
      let t_zero, t_one = run_trial ~flush_on_switch ~skip_it ~secret in
      t_zero = t_one)
    [ 0; 1 ]

let () =
  let show name result = Printf.printf "%-28s %s\n" name result in
  let l1 = leaks ~flush_on_switch:false ~skip_it:false in
  show "no flush:" (if l1 then "LEAKS the secret" else "???");
  let l2 = leaks ~flush_on_switch:true ~skip_it:true in
  show "flush, Skip It on:"
    (if l2 then "LEAKS — the skip bit dropped the invalidating flush (§6.1)"
     else "???");
  let c3 = closed ~flush_on_switch:true ~skip_it:false in
  show "flush, Skip It off:" (if c3 then "closed (both probes miss)" else "???");
  assert (l1 && l2 && c3);
  print_endline "\nlesson: Skip It elides *redundant persistence* writebacks; when";
  print_endline "CBO.FLUSH is used for isolation, its invalidation is not redundant."
