(* The DMA-consistency scenario from §1/§2.5: a device reads main memory
   directly, so a producer must explicitly write its buffer back before
   ringing the doorbell.

   The "device" here reads the persistence domain (DRAM), which is exactly
   what a non-coherent DMA engine sees.  The example shows the bug (stale
   DMA read without writeback), the fix (CBO.CLEAN + FENCE before the
   doorbell), and why clean beats flush for a producer that keeps using its
   buffer.

   Run with: dune exec examples/dma_buffer.exe *)

module System = Skipit_core.System
module Config = Skipit_core.Config

let buffer_lines = 16

let fill sys base tag =
  for i = 0 to buffer_lines - 1 do
    for w = 0 to 7 do
      System.store sys ~core:0 (base + (i * 64) + (w * 8)) ((tag * 1000) + (i * 8) + w)
    done
  done

let device_reads_ok sys base tag =
  let ok = ref true in
  for i = 0 to buffer_lines - 1 do
    for w = 0 to 7 do
      if System.persisted_word sys (base + (i * 64) + (w * 8)) <> (tag * 1000) + (i * 8) + w
      then ok := false
    done
  done;
  !ok

let writeback sys base ~clean =
  for i = 0 to buffer_lines - 1 do
    if clean then System.clean sys ~core:0 (base + (i * 64))
    else System.flush sys ~core:0 (base + (i * 64))
  done;
  System.fence sys ~core:0

let () =
  let sys = System.create (Config.platform ~cores:1 ~skip_it:true ()) in
  let base = Skipit_mem.Allocator.alloc (System.allocator sys) ~align:64 (buffer_lines * 64) in

  (* Bug: ring the doorbell without a writeback — the device sees garbage. *)
  fill sys base 1;
  Printf.printf "no writeback : device sees fresh data? %b (stale — the bug)\n"
    (device_reads_ok sys base 1);

  (* Fix: clean + fence before the doorbell. *)
  writeback sys base ~clean:true;
  Printf.printf "clean + fence: device sees fresh data? %b\n" (device_reads_ok sys base 1);

  (* Producer reuse: after CLEAN the buffer is still cached; after FLUSH
     every access misses.  A checksum pass over the buffer (the producer
     verifying what it handed to the device) shows the difference the paper
     measures in Fig. 10. *)
  let checksum_pass () =
    let t0 = System.clock sys ~core:0 in
    let acc = ref 0 in
    for i = 0 to buffer_lines - 1 do
      acc := !acc lxor System.load sys ~core:0 (base + (i * 64))
    done;
    ignore !acc;
    System.clock sys ~core:0 - t0
  in
  let read_after_clean = checksum_pass () in
  (* New payload, handed off with FLUSH this time.  (On fresh-but-clean
     lines Skip It would drop the flushes entirely — the timing_channel
     example explores that; here the refill makes them dirty first.) *)
  fill sys base 2;
  writeback sys base ~clean:false (* flush: invalidates *);
  let read_after_flush = checksum_pass () in
  Printf.printf "re-read after clean: %d cycles; after flush: %d cycles (%.0fx)\n"
    read_after_clean read_after_flush
    (float_of_int read_after_flush /. float_of_int read_after_clean);
  assert (read_after_flush > 2 * read_after_clean)
