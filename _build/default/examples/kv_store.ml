(* A durable key-value store: the persistent lock-free hash table of §7.4
   run by two simulated threads under the Skip-It strategy, followed by a
   crash and a recovery scan of the NVMM image.

   Demonstrates the full stack: effects-based threads, the persistence
   context (automatic instrumentation — every shared access persists, the
   regime where redundant writebacks abound), the
   hardware skip bit eliminating redundant writebacks, and recovery.

   Run with: dune exec examples/kv_store.exe *)

module System = Skipit_core.System
module Config = Skipit_core.Config
module T = Skipit_core.Thread
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops

let () =
  let sys = System.create (Config.platform ~cores:2 ~skip_it:true ()) in
  let pctx = Pctx.make (Strategy.skipit_hw ()) Pctx.Automatic in
  let store = ref None in

  (* Thread 0 builds the store; both threads then insert disjoint key sets
     concurrently. *)
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               store := Some (Ops.create_sized Ops.Hash_set ~buckets:64 pctx (System.allocator sys)));
         };
       ]);
  let kv = Option.get !store in
  let worker core =
    {
      T.core;
      body =
        (fun () ->
          for i = 1 to 50 do
            ignore (kv.Ops.insert pctx ((i * 2) + core))
          done;
          (* Delete a few of our own keys again. *)
          for i = 1 to 10 do
            ignore (kv.Ops.delete pctx ((i * 10) + core))
          done);
    }
  in
  let cycles = T.run sys [ worker 0; worker 1 ] in
  let before = kv.Ops.snapshot sys in
  Printf.printf "2 threads inserted/deleted concurrently in %d cycles; %d keys live\n" cycles
    (List.length before);

  let report = System.stats_report sys in
  let counter name = Option.value ~default:0 (List.assoc_opt name report) in
  Printf.printf "hardware dropped %d redundant writebacks (skip bit)\n"
    (counter "fu.0.skip_dropped" + counter "fu.1.skip_dropped");

  (* Power failure, then recovery from the persisted image alone. *)
  System.crash sys;
  let after = kv.Ops.snapshot sys in
  Printf.printf "after crash: %d keys recovered\n" (List.length after);
  if before = after then print_endline "recovered state matches pre-crash state: durable"
  else begin
    (* Every key whose update was fenced must survive; the snapshot can only
       differ if an un-fenced update was in flight — there are none here. *)
    print_endline "RECOVERY MISMATCH";
    exit 1
  end
