(* A crash-consistent write-ahead log built on CBO.CLEAN + FENCE — the NVMM
   motivation from §1/§2.5 as a runnable scenario.

   Each append writes the payload, cleans its lines, fences, and only then
   publishes the entry by bumping a persistent tail counter (clean +
   fence again).  The ordering guarantees that after any crash the log
   recovers to a prefix of the appended entries, never a torn one.

   The example appends entries, crashes at an adversarial moment (payload
   persisted but tail bump not yet), and verifies recovery.

   Run with: dune exec examples/persistent_log.exe *)

module System = Skipit_core.System
module Config = Skipit_core.Config
module Alloc = Skipit_mem.Allocator

let entry_words = 8 (* one cache line per entry *)

type log = { tail_addr : int; entries : int (* base *) }

let create sys =
  let alloc = System.allocator sys in
  let tail_addr = Alloc.alloc_line alloc ~line_bytes:64 in
  let entries = Alloc.alloc alloc ~align:64 (64 * 64) in
  System.store sys ~core:0 tail_addr 0;
  System.clean sys ~core:0 tail_addr;
  System.fence sys ~core:0;
  { tail_addr; entries }

let entry_addr log i = log.entries + (i * 64)

(* Append with correct persist ordering.  [publish] lets the example crash
   between persisting the payload and persisting the tail bump. *)
let append ?(publish = true) sys log ~seq =
  let tail = System.load sys ~core:0 log.tail_addr in
  let base = entry_addr log tail in
  for w = 0 to entry_words - 1 do
    System.store sys ~core:0 (base + (w * 8)) ((seq * 100) + w)
  done;
  System.clean sys ~core:0 base;
  System.fence sys ~core:0;
  if publish then begin
    System.store sys ~core:0 log.tail_addr (tail + 1);
    System.clean sys ~core:0 log.tail_addr;
    System.fence sys ~core:0
  end

(* Recovery reads only the persistence domain (what survived the crash). *)
let recover sys log =
  let tail = System.persisted_word sys log.tail_addr in
  List.init tail (fun i ->
    List.init entry_words (fun w -> System.persisted_word sys (entry_addr log i + (w * 8))))

let () =
  let sys = System.create (Config.platform ~cores:1 ~skip_it:true ()) in
  let log = create sys in

  append sys log ~seq:1;
  append sys log ~seq:2;
  append sys log ~seq:3;
  (* Entry 4: payload persisted, but we crash before the tail is bumped. *)
  append sys log ~seq:4 ~publish:false;
  System.store sys ~core:0 log.tail_addr 4 (* tail bump still in cache... *);
  System.crash sys (* ...when the power goes out. *);

  let entries = recover sys log in
  Printf.printf "recovered %d entries (appended 3 fully, 1 torn)\n" (List.length entries);
  List.iteri
    (fun i entry ->
      let seq = List.nth entry 0 / 100 in
      Printf.printf "  entry %d: seq=%d %s\n" i seq
        (if List.for_all (fun w -> w / 100 = seq) entry then "intact" else "TORN"))
    entries;
  assert (List.length entries = 3);
  assert (
    List.for_all
      (fun entry ->
        let seq = List.nth entry 0 / 100 in
        List.mapi (fun w v -> v = (seq * 100) + w) entry |> List.for_all Fun.id)
      entries);
  print_endline "prefix property holds: no torn entries visible after recovery"
